//! Chaos suite: deterministic fault injection against the runtime's
//! failure model (ISSUE acceptance criteria).
//!
//! Every test that could deadlock on a regression runs under
//! [`guarded`], a watchdog thread that fails the test instead of
//! hanging the suite. The driver-level tests exercise the real `npb`
//! binary via `CARGO_BIN_EXE_npb` subprocesses; nothing here touches
//! the network.

use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use npb::{
    try_run_benchmark, Class, FaultKind, FaultPlan, GuardConfig, RegionError, RunError, RunOptions,
    Style, Team, Verified,
};
use npb_harness::json::Json;

/// Run `f` on a helper thread; fail (instead of deadlocking the whole
/// suite) if it does not complete within `secs`.
fn guarded<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(secs)).expect("watchdog: guarded section deadlocked")
}

#[test]
fn injected_panic_mid_barrier_is_reported_and_team_recovers_at_full_width() {
    guarded(60, || {
        let team = Team::new(4);
        let plan = FaultPlan::new(FaultKind::Panic, 1);
        let victim = plan.victim(4);
        plan.arm(Some(&team)).unwrap();

        // The victim unwinds at region entry while its siblings wait in
        // the barrier; poisoning must release them instead of hanging.
        let err =
            team.try_exec(|p| p.barrier()).expect_err("armed panic fault must fail the region");
        match err {
            RegionError::Panicked { tids } => {
                assert_eq!(tids, vec![victim], "only the victim is a primary panic")
            }
            other => panic!("expected Panicked, got {other:?}"),
        }

        // The fault was one-shot and the team healed: a subsequent
        // region runs clean at full width.
        assert_eq!(team.size(), 4, "default policy respawns to full width");
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        team.exec(move |p| {
            ran2.fetch_add(1, Ordering::SeqCst);
            p.barrier();
        });
        assert_eq!(ran.load(Ordering::SeqCst), 4, "all four ranks ran the next region");
    });
}

#[test]
fn injected_panic_mid_barrier_poisons_spinning_waiters() {
    // Same failure as above, but with an effectively unbounded spin
    // budget: the victim's siblings are burning the lock-free spin phase
    // of the barrier, not parked on the condvar, when poisoning must
    // reach them.
    guarded(60, || {
        let team = Team::new(4);
        team.set_spin_us(200_000);
        let plan = FaultPlan::new(FaultKind::Panic, 1);
        let victim = plan.victim(4);
        plan.arm(Some(&team)).unwrap();
        let err =
            team.try_exec(|p| p.barrier()).expect_err("armed panic fault must fail the region");
        match err {
            RegionError::Panicked { tids } => {
                assert_eq!(tids, vec![victim], "only the victim is a primary panic")
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        // Healed and still spinning: the next region runs clean.
        assert_eq!(team.size(), 4, "default policy respawns to full width");
        team.exec(|p| p.barrier());
    });
}

#[test]
fn injected_delay_is_absorbed_without_deadlock() {
    guarded(60, || {
        let team = Team::new(3);
        let plan = FaultPlan::new(FaultKind::Delay, 2);
        plan.arm(Some(&team)).unwrap();
        // A straggler sleeping before the barrier is legal behaviour,
        // not a failure: the region completes normally.
        team.try_exec(|p| p.barrier()).expect("a delayed rank is not an error");
        team.try_exec(|p| p.barrier()).expect("team is reusable after the delay");
    });
}

#[test]
fn barrier_panic_regression_does_not_deadlock_waiters() {
    // Regression for the pre-poisoning deadlock: rank 0 panics before
    // the barrier while every other rank is already waiting in it.
    guarded(60, || {
        let team = Team::new(4);
        let err = team
            .try_exec(|p| {
                if p.tid() == 0 {
                    panic!("boom before barrier");
                }
                p.barrier();
            })
            .expect_err("rank 0's panic must fail the region");
        assert!(
            matches!(&err, RegionError::Panicked { tids } if tids == &vec![0]),
            "waiters unwound by poisoning are collateral, not primaries: {err:?}"
        );
        // And the team still works.
        team.exec(|p| p.barrier());
        assert_eq!(team.size(), 4);
    });
}

#[test]
fn nan_injection_turns_verification_into_failure() {
    let plan = FaultPlan::parse("nan:1").unwrap();
    let opts = RunOptions { inject: Some(&plan), ..RunOptions::default() };
    let report = try_run_benchmark("EP", Class::S, Style::Opt, 0, &opts)
        .expect("NaN corruption does not fail the region, only verification");
    assert_eq!(report.verified, Verified::Failure);
}

#[test]
fn worker_fault_on_serial_run_is_a_config_error() {
    let plan = FaultPlan::parse("panic:1").unwrap();
    let opts = RunOptions { inject: Some(&plan), ..RunOptions::default() };
    match try_run_benchmark("EP", Class::S, Style::Opt, 0, &opts) {
        Err(RunError::Config(_)) => {}
        other => panic!("expected Config error, got {other:?}"),
    }
}

#[test]
fn injected_panic_fails_a_real_benchmark_then_retry_succeeds() {
    guarded(120, || {
        let plan = FaultPlan::parse("panic:3").unwrap();
        let opts = RunOptions { inject: Some(&plan), ..RunOptions::default() };
        match try_run_benchmark("CG", Class::S, Style::Opt, 2, &opts) {
            Err(RunError::Region(RegionError::Panicked { tids })) => {
                assert_eq!(tids, vec![plan.victim(2)])
            }
            other => panic!("expected Panicked region error, got {other:?}"),
        }
        // Faults are one-shot: the same call without the plan verifies.
        let clean = RunOptions::default();
        let report = try_run_benchmark("CG", Class::S, Style::Opt, 2, &clean).unwrap();
        assert!(report.verified.is_success());
    });
}

// ---- in-computation SDC guard (bitflip -> detect -> rollback) --------

/// Run `bench` with an armed exponent bit flip and the SDC guard on;
/// the guard must detect the corruption, roll back to the last
/// checkpoint, replay, and still verify. `spin_us` selects the
/// synchronization mode (`None` keeps the team default).
fn assert_bitflip_recovery_with_spin(bench: &str, threads: usize, spin_us: Option<u64>) {
    let plan = FaultPlan::parse("bitflip:42").unwrap();
    let opts = RunOptions {
        inject: Some(&plan),
        guard: GuardConfig::enabled_every(2),
        spin_us,
        ..RunOptions::default()
    };
    let report = try_run_benchmark(bench, Class::S, Style::Opt, threads, &opts)
        .expect("a bit flip never fails the region, only the numerics");
    assert!(
        report.verified.is_success(),
        "{bench} t={threads}: guarded run must verify after rollback, got {:?}",
        report.verified
    );
    assert!(
        report.recoveries >= 1,
        "{bench} t={threads}: the guard must have detected and rolled back at least once"
    );
    assert!(
        report.checkpoint_count >= 1,
        "{bench} t={threads}: recovery is impossible without checkpoints"
    );
}

fn assert_bitflip_recovery(bench: &str, threads: usize) {
    assert_bitflip_recovery_with_spin(bench, threads, None);
}

/// The no-guard control: the same flip corrupts the run and nothing
/// detects it, so verification must fail (this is what makes the
/// corruption *silent*).
fn assert_bitflip_unguarded_fails(bench: &str, threads: usize) {
    let plan = FaultPlan::parse("bitflip:42").unwrap();
    let opts = RunOptions { inject: Some(&plan), ..RunOptions::default() };
    let report = try_run_benchmark(bench, Class::S, Style::Opt, threads, &opts)
        .expect("a bit flip never fails the region, only the numerics");
    assert_eq!(report.verified, Verified::Failure, "{bench} t={threads}: unguarded control");
    assert_eq!(report.recoveries, 0, "{bench} t={threads}: dormant guard must not roll back");
}

#[test]
fn cg_bitflip_is_detected_rolled_back_and_verified() {
    guarded(120, || {
        assert_bitflip_recovery("CG", 0);
        assert_bitflip_recovery("CG", 2);
        assert_bitflip_unguarded_fails("CG", 0);
    });
}

#[test]
fn mg_bitflip_is_detected_rolled_back_and_verified() {
    guarded(120, || {
        assert_bitflip_recovery("MG", 0);
        assert_bitflip_recovery("MG", 2);
        assert_bitflip_unguarded_fails("MG", 0);
    });
}

#[test]
fn ft_bitflip_is_detected_rolled_back_and_verified() {
    guarded(120, || {
        assert_bitflip_recovery("FT", 0);
        assert_bitflip_recovery("FT", 2);
        assert_bitflip_unguarded_fails("FT", 0);
    });
}

#[test]
fn bitflip_recovery_works_with_spinning_enabled() {
    // The rollback-and-replay path reuses the team across attempts;
    // spinning waiters must not perturb detection, checkpointing, or the
    // replay's numerics.
    guarded(120, || {
        assert_bitflip_recovery_with_spin("CG", 2, Some(200_000));
        assert_bitflip_recovery_with_spin("MG", 2, Some(200_000));
    });
}

// ---- driver subprocesses (exit codes) --------------------------------

fn npb(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_npb")).args(args).output().expect("spawn npb driver")
}

#[test]
fn driver_nan_injection_exits_1() {
    let out = npb(&["ep", "--class", "S", "--inject", "nan:1"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn driver_injected_panic_with_retry_exits_0() {
    // The ISSUE's chaos smoke: the first attempt dies on the injected
    // panic, the retry runs clean and verifies.
    let out =
        npb(&["ep", "--class", "S", "--threads", "2", "--inject", "panic:1", "--retries", "1"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    assert!(stderr.contains("retrying"), "first attempt must have failed: {stderr}");
}

#[test]
fn driver_injected_panic_without_retry_exits_1() {
    let out = npb(&["ep", "--class", "S", "--threads", "2", "--inject", "panic:1"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn driver_usage_error_exits_2() {
    let out = npb(&["ep", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn driver_watchdog_timeout_terminates_with_watchdog_exit_code() {
    // A hang-injected rank wedges at region entry; the safe watchdog
    // cannot kill or abandon it, so it must terminate the process with
    // the dedicated exit code, naming the stuck rank.
    let out =
        npb(&["ep", "--class", "S", "--threads", "2", "--inject", "hang:1", "--timeout", "500"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(npb::WATCHDOG_EXIT_CODE), "stderr: {stderr}");
    assert!(stderr.contains("never arrived"), "stderr: {stderr}");
}

// ---- chaos meets observability (trace under failure) -----------------

#[test]
fn panic_poisoned_region_flushes_partial_spans_with_poisoned_marker() {
    // The recorder must not lose what it saw before the failure: when a
    // rank's region body unwinds, the driver still flushes the profile,
    // with the unwound rank marked poisoned and the surviving ranks'
    // partial spans intact. Subprocess, so the trace session is private.
    let path = std::env::temp_dir().join(format!("npb-chaos-poisoned-{}.json", std::process::id()));
    let out = npb(&[
        "cg",
        "--class",
        "S",
        "--threads",
        "2",
        "--inject",
        "panic:3",
        "--trace",
        path.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "injected panic must fail the run: {stderr}");
    let text = std::fs::read_to_string(&path).expect("partial profile must still be written");
    std::fs::remove_file(&path).ok();
    let v = Json::parse(text.trim()).expect("profile of a failed run still parses");
    let Some(Json::Arr(poisoned)) = v.get("poisoned_ranks") else { panic!("poisoned_ranks") };
    assert!(!poisoned.is_empty(), "the unwound rank must be marked poisoned: {text}");
    let Some(Json::Arr(spans)) = v.get("spans") else { panic!("spans array") };
    assert!(!spans.is_empty(), "partial spans from before the panic must be flushed");
}

#[test]
fn driver_watchdog_termination_leaves_a_parseable_truncated_profile() {
    // The watchdog cannot unwind a wedged rank, so it terminates the
    // process — but first it emergency-flushes the trace, giving a
    // post-mortem profile of everything up to the hang.
    let path = std::env::temp_dir().join(format!("npb-chaos-watchdog-{}.json", std::process::id()));
    let out = npb(&[
        "ep",
        "--class",
        "S",
        "--threads",
        "2",
        "--inject",
        "hang:1",
        "--timeout",
        "500",
        "--trace",
        path.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(npb::WATCHDOG_EXIT_CODE), "stderr: {stderr}");
    let text = std::fs::read_to_string(&path).expect("emergency dump must be written");
    std::fs::remove_file(&path).ok();
    let v = Json::parse(text.trim()).expect("truncated profile still parses");
    assert_eq!(v.get("truncated"), Some(&Json::Bool(true)), "profile: {text}");
    assert_eq!(v.get_str("bench"), Some("EP"));
}

#[test]
fn driver_bitflip_rollback_is_recorded_as_a_trace_span() {
    // A guarded run that detects corruption and rolls back must show
    // that recovery in the profile: rollback time is real wall clock.
    let path = std::env::temp_dir().join(format!("npb-chaos-rollback-{}.json", std::process::id()));
    let out = npb(&[
        "cg",
        "--class",
        "S",
        "--inject",
        "bitflip:42",
        "--sdc-guard",
        "--checkpoint-every",
        "2",
        "--trace",
        path.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "guarded run must recover and verify: {stderr}");
    let text = std::fs::read_to_string(&path).expect("profile written");
    std::fs::remove_file(&path).ok();
    let v = Json::parse(text.trim()).expect("profile parses");
    let Some(Json::Arr(spans)) = v.get("spans") else { panic!("spans array") };
    assert!(
        spans.iter().any(|sp| sp.get_str("kind") == Some("rollback")),
        "a rollback span must be recorded"
    );
    let Some(Json::Arr(regions)) = v.get("regions") else { panic!("regions array") };
    let rollbacks: f64 = regions.iter().filter_map(|r| r.get_num("rollbacks")).sum();
    assert!(rollbacks >= 1.0, "region aggregates must count the rollback");
}

#[test]
fn driver_watchdog_fires_while_workers_are_spinning() {
    // With a large spin budget the healthy rank spins (then parks) while
    // the hang-injected rank is wedged; the master's own spin phase is
    // bounded by the watchdog deadline, so the timeout must still fire.
    let out = npb(&[
        "ep",
        "--class",
        "S",
        "--threads",
        "2",
        "--inject",
        "hang:1",
        "--timeout",
        "500",
        "--spin-us",
        "200000",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(npb::WATCHDOG_EXIT_CODE), "stderr: {stderr}");
    assert!(stderr.contains("never arrived"), "stderr: {stderr}");
}

// ---- procs backend: rank-crash containment ---------------------------
//
// The tentpole acceptance criteria: SIGKILL of any single worker rank
// mid-run ends in a verified run with `recoveries >= 1` journaled and
// never a hung parent, and a procs run is bit-identical to a threads
// run at the same width.

/// The last `--json` record a driver printed, parsed.
fn last_json(stdout: &[u8]) -> Json {
    let text = String::from_utf8_lossy(stdout);
    let line = text
        .lines()
        .rev()
        .map(str::trim)
        .find(|l| l.starts_with('{'))
        .unwrap_or_else(|| panic!("no json record in stdout: {text}"));
    Json::parse(line).expect("parse driver json record")
}

/// PPid of `/proc/<pid>`, if it still exists.
fn ppid_of(pid: &str) -> Option<u32> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    status.lines().find(|l| l.starts_with("PPid:"))?.split_whitespace().nth(1)?.parse().ok()
}

/// Poll /proc for a worker-rank child of `parent` (cmdline carries the
/// hidden `--rank` flag). The pacing env var keeps S-class rounds slow
/// enough that the worker is alive for seconds, not milliseconds.
fn find_worker_rank(parent: u32, within: Duration) -> u32 {
    let deadline = std::time::Instant::now() + within;
    while std::time::Instant::now() < deadline {
        for entry in std::fs::read_dir("/proc").expect("read /proc").flatten() {
            let name = entry.file_name();
            let Some(pid) = name.to_str().filter(|n| n.bytes().all(|b| b.is_ascii_digit())) else {
                continue;
            };
            if ppid_of(pid) != Some(parent) {
                continue;
            }
            let cmdline = std::fs::read(format!("/proc/{pid}/cmdline")).unwrap_or_default();
            if cmdline.split(|&b| b == 0).any(|arg| arg == b"--rank") {
                return pid.parse().unwrap();
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("no worker rank appeared under pid {parent} within {within:?}");
}

/// SIGKILL one worker rank of a paced procs run and return the parent's
/// output. `extra` rides on the command line (the recovery-budget knob).
fn run_procs_and_kill_rank(bench: &str, extra: &[&str]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_npb"));
    cmd.args([bench, "--class", "S", "--backend", "procs", "--threads", "4", "--json"])
        .args(extra)
        .env("NPB_PROCS_ROUND_DELAY_MS", "150")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped());
    let child = cmd.spawn().expect("spawn procs parent");
    let victim = find_worker_rank(child.id(), Duration::from_secs(20));
    // Let the ranks commit a checkpoint or two first, so the recovery
    // exercises restore-from-checkpoint, not restart-from-scratch.
    std::thread::sleep(Duration::from_millis(400));
    assert!(npb_service::signal::send(victim, 9), "SIGKILL rank pid {victim}");
    guarded(120, move || child.wait_with_output().expect("reap procs parent"))
}

fn assert_kill_one_rank_is_contained(bench: &'static str) {
    let out = run_procs_and_kill_rank(bench, &[]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    assert!(stderr.contains("died (signal:9)"), "stderr: {stderr}");
    let record = last_json(&out.stdout);
    assert_eq!(record.get_str("verified"), Some("success"), "stderr: {stderr}");
    assert!(record.get_uint("recoveries").unwrap_or(0) >= 1, "recovery must be journaled");
}

#[test]
fn procs_ep_survives_sigkill_of_one_rank() {
    assert_kill_one_rank_is_contained("ep");
}

#[test]
fn procs_is_survives_sigkill_of_one_rank() {
    assert_kill_one_rank_is_contained("is");
}

#[test]
fn procs_sigkill_without_recovery_budget_fails_terminally() {
    // The unguarded control: with the recovery budget at zero the same
    // rank death must end the run with a structured failure (exit 1),
    // not a verified report and not a hung parent.
    let out = run_procs_and_kill_rank("ep", &["--max-recoveries", "0"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
    assert!(stderr.contains("panicked inside a parallel region"), "stderr: {stderr}");
}

#[test]
fn procs_injected_panic_recovers_from_checkpoints() {
    // The deterministic (raceless) leg of crash containment: the
    // injected fault fires at the first round after every rank
    // committed a checkpoint, so the recovery proves restore.
    let out = npb(&[
        "ep",
        "--class",
        "S",
        "--backend",
        "procs",
        "--threads",
        "2",
        "--inject",
        "panic",
        "--json",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    let record = last_json(&out.stdout);
    assert_eq!(record.get_str("verified"), Some("success"));
    assert!(record.get_uint("recoveries").unwrap_or(0) >= 1, "stderr: {stderr}");
}

#[test]
fn procs_rejects_in_process_corruption_faults() {
    // NaN/bit-flip faults corrupt in-process state and cannot cross the
    // exec boundary; the driver must say so instead of silently
    // ignoring the flag.
    let out =
        npb(&["cg", "--class", "S", "--backend", "procs", "--threads", "2", "--inject", "bitflip"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot cross the procs exec boundary"), "stderr: {stderr}");
}

#[test]
fn procs_results_are_bit_identical_to_threads() {
    // result_sig is the integrity hash over exactly what verification
    // reads; equal strings mean the backends agree to the last bit.
    for bench in ["ep", "is", "cg"] {
        let sig = |backend: &str| {
            let out =
                npb(&[bench, "--class", "S", "--backend", backend, "--threads", "4", "--json"]);
            assert_eq!(
                out.status.code(),
                Some(0),
                "{bench}/{backend} stderr: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            last_json(&out.stdout)
                .get_str("result_sig")
                .unwrap_or_else(|| panic!("{bench}/{backend} record has no result_sig"))
                .to_string()
        };
        assert_eq!(sig("threads"), sig("procs"), "{bench}: backends must agree bit-for-bit");
    }
}

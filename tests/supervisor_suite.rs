//! Supervisor chaos suite: the out-of-process fault-tolerance layer,
//! exercised end to end against the real `npb` and `npb-suite` binaries
//! (ISSUE 2 acceptance criteria).
//!
//! The in-process chaos tests (`tests/chaos_suite.rs`) prove that a
//! watchdog exit or a wedged rank kills the *process*; these tests
//! prove the supervisor contains exactly those deaths to one cell of a
//! sweep: deadline-kill + clean retry, degradation, quarantine
//! reporting, and crash-safe resume.

use std::path::PathBuf;
use std::process::{Command, Output};

use npb_harness::manifest::CellStatus;
use npb_harness::read_manifest;

fn tmp_manifest(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("npb-suite-test-{}-{name}.jsonl", std::process::id()))
}

/// Run `npb-suite` with the given args, always pointing it at the real
/// `npb` driver binary cargo built for this test run.
fn suite(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_npb-suite"))
        .args(args)
        .args(["--npb-bin", env!("CARGO_BIN_EXE_npb")])
        .output()
        .expect("spawn npb-suite")
}

#[test]
fn hang_injected_cell_is_deadline_killed_retried_clean_and_journaled() {
    let manifest = tmp_manifest("hang-kill-retry");
    // The injected hang wedges a rank at region entry: in-process this
    // is unrecoverable (the watchdog can only die). The supervisor must
    // kill the child at the deadline, retry clean, and verify.
    let out = suite(&[
        "ep",
        "--class",
        "S",
        "--threads",
        "2",
        "--inject",
        "hang:1",
        "--deadline-ms",
        "2000",
        "--retries",
        "1",
        "--backoff-ms",
        "0",
        "--manifest",
        manifest.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    assert!(stderr.contains("killed and reaped"), "stderr: {stderr}");

    // The manifest must record BOTH the kill and the eventual success.
    let text = std::fs::read_to_string(&manifest).unwrap();
    assert!(
        text.contains(r#""event":"attempt","bench":"EP","class":"S","style":"opt","threads":2,"attempt":0,"run_threads":2,"outcome":"deadline-killed""#),
        "manifest must journal the kill: {text}"
    );
    assert!(
        text.contains(r#""attempt":1,"run_threads":2,"outcome":"verified""#),
        "manifest must journal the clean retry: {text}"
    );
    let state = read_manifest(&manifest).unwrap();
    assert_eq!(state.outcomes.len(), 1);
    assert_eq!(state.outcomes[0].status, CellStatus::Verified);
    assert_eq!(state.outcomes[0].attempts, 2);
    assert_eq!(state.outcomes[0].kills, 1);
    assert_eq!(state.outcomes[0].final_threads, 2, "retry happens at the requested width");
    std::fs::remove_file(&manifest).ok();
}

#[test]
fn resume_runs_exactly_the_remaining_cells() {
    let manifest = tmp_manifest("resume");
    // A fast clean three-cell sweep...
    let out = suite(&[
        "ep,cg,mg",
        "--class",
        "S",
        "--threads",
        "1",
        "--manifest",
        manifest.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    // ...killed "mid-sweep": truncate the journal into the middle of
    // the second cell's terminal record, exactly what SIGKILL during
    // the append leaves behind.
    let text = std::fs::read_to_string(&manifest).unwrap();
    let second_cell = text.match_indices(r#"{"event":"cell""#).nth(1).unwrap().0;
    std::fs::write(&manifest, &text[..second_cell + 20]).unwrap();

    let out = suite(&[
        "ep,cg,mg",
        "--class",
        "S",
        "--threads",
        "1",
        "--resume",
        manifest.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    assert!(stderr.contains("torn line"), "torn tail must be reported: {stderr}");
    assert_eq!(
        stdout.matches("skipped (already completed in resumed manifest)").count(),
        1,
        "exactly the one intact cell is skipped: {stdout}"
    );
    assert_eq!(stdout.matches("... verified").count(), 2, "the other two cells run: {stdout}");

    // The resumed manifest is complete: all three cells have terminal
    // records, and EP (completed before the kill) was not re-run.
    let state = read_manifest(&manifest).unwrap();
    assert_eq!(state.outcomes.len(), 3, "complete manifest after resume");
    assert!(state.outcomes.iter().all(|o| o.status == CellStatus::Verified));
    let text = std::fs::read_to_string(&manifest).unwrap();
    assert_eq!(
        text.matches(r#""event":"attempt","bench":"EP""#).count(),
        1,
        "EP ran once in total across both invocations: {text}"
    );
    std::fs::remove_file(&manifest).ok();
}

#[test]
fn child_watchdog_exit_is_contained_and_retried() {
    // With --child-timeout-ms the *child's* in-process watchdog fires
    // first (exit 3) — previously fatal to a whole `npb all`. The
    // supervisor classifies it, retries clean, and the sweep survives.
    let manifest = tmp_manifest("watchdog");
    let out = suite(&[
        "ep",
        "--class",
        "S",
        "--threads",
        "2",
        "--inject",
        "hang:1",
        "--child-timeout-ms",
        "500",
        "--deadline-ms",
        "10000",
        "--retries",
        "1",
        "--backoff-ms",
        "0",
        "--manifest",
        manifest.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&manifest).unwrap();
    assert!(
        text.contains(r#""attempt":0,"run_threads":2,"outcome":"watchdog-exit""#),
        "the child watchdog exit must be journaled as such: {text}"
    );
    let state = read_manifest(&manifest).unwrap();
    assert_eq!(state.outcomes[0].status, CellStatus::Verified);
    std::fs::remove_file(&manifest).ok();
}

#[test]
fn verification_failure_is_reported_not_quarantined() {
    // An injected NaN makes verification fail (exit 1 + JSON record):
    // numerics, not infrastructure — the supervisor must not walk the
    // thread ladder, and with no retries the cell fails terminally.
    let manifest = tmp_manifest("nan");
    let out = suite(&[
        "ep",
        "--class",
        "S",
        "--threads",
        "0",
        "--inject",
        "nan:1",
        "--retries",
        "0",
        "--backoff-ms",
        "0",
        "--manifest",
        manifest.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "a failed cell fails the sweep: {stdout}");
    assert!(stdout.contains("verification-failed"), "{stdout}");
    let state = read_manifest(&manifest).unwrap();
    assert_eq!(state.outcomes[0].status, CellStatus::Failed("verification-failed"));
    assert_eq!(state.outcomes[0].attempts, 1, "verification failures do not walk the ladder");
    std::fs::remove_file(&manifest).ok();
}

#[test]
fn bitflip_cell_recovers_in_computation_and_is_journaled_as_verified() {
    // The innermost layer of the fault-tolerance stack, seen from the
    // outermost: the child's SDC guard detects the injected bit flip,
    // rolls back, and verifies — so the supervisor sees a clean exit 0
    // on the FIRST attempt. No retry, no degradation ladder, and the
    // manifest records the recovery count in the `recovered` dimension.
    let manifest = tmp_manifest("bitflip-recovery");
    let out = suite(&[
        "cg",
        "--class",
        "S",
        "--threads",
        "0",
        "--inject",
        "bitflip:42",
        "--sdc-guard",
        "--checkpoint-every",
        "2",
        "--retries",
        "0",
        "--backoff-ms",
        "0",
        "--manifest",
        manifest.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    assert!(stdout.contains("sdc recover"), "recovery surfaces in the cell line: {stdout}");
    assert!(stdout.contains("1 via sdc recovery"), "and in the summary: {stdout}");

    let state = read_manifest(&manifest).unwrap();
    assert_eq!(state.outcomes.len(), 1);
    assert_eq!(state.outcomes[0].status, CellStatus::Verified);
    assert_eq!(state.outcomes[0].attempts, 1, "in-computation recovery needs no supervisor retry");
    assert_eq!(state.outcomes[0].kills, 0);
    assert!(state.outcomes[0].recoveries >= 1, "the recovered dimension must be journaled");
    std::fs::remove_file(&manifest).ok();
}

#[test]
fn usage_errors_exit_2() {
    assert_eq!(suite(&["ep", "--bogus"]).status.code(), Some(2));
    assert_eq!(suite(&["zz"]).status.code(), Some(2));
    // Worker faults cannot be injected into a serial-width sweep; the
    // supervisor rejects the sweep up front instead of failing 8 cells.
    let out = suite(&["ep", "--threads", "0", "--inject", "hang:1"]);
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn driver_json_flag_emits_the_parseable_record() {
    // The structured channel the supervisor relies on: one JSON line on
    // stdout alongside the classic banner.
    let out = Command::new(env!("CARGO_BIN_EXE_npb"))
        .args(["ep", "--class", "S", "--threads", "2", "--json"])
        .output()
        .expect("spawn npb");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("EP Benchmark Completed"), "banner still prints: {stdout}");
    let record = npb_harness::ChildReport::last_in(&stdout)
        .expect("stdout must contain a parseable JSON record");
    assert_eq!(record.name, "EP");
    assert_eq!(record.threads, 2);
    assert_eq!(record.verified, "success");
    assert_eq!(record.attempts, 1);
}

//! Integration suite for the `npbd` service: the Level 4 containment
//! story, exercised through real daemons, real sockets, and real
//! supervised `npb` children.
//!
//! Covered here:
//! * submit → verified; identical submit → cache hit without a child
//!   spawn; concurrent identical submits → single-flight dedupe;
//! * costed admission: queue-full rejection under load, with the
//!   queue recovering afterwards;
//! * per-job fault policy: a hanging job is deadline-killed, journaled,
//!   and retried to a verified result;
//! * crash safety: SIGKILL the daemon mid-job, restart `--resume`,
//!   every accepted job still reaches a terminal disposition and the
//!   re-run result is served from cache afterwards;
//! * graceful drain: SIGTERM stops admission (`rejected:draining`),
//!   running jobs finish, the journal is sealed, exit code 0 —
//!   and the chaos acceptance run: 32 concurrent `npb-attack` clients
//!   with a mid-run SIGKILL, no accepted job lost.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use npb_service::client::Client;
use npb_service::journal::recover;
use npb_service::server::Addr;
use npb_service::signal;

/// These tests assert on *timing* (a job still being in flight when a
/// second request lands). Run them one daemon at a time: five daemons
/// plus 32 attack clients sharing the test box's cores turns "still in
/// flight" into a coin flip.
static ONE_DAEMON_AT_A_TIME: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    ONE_DAEMON_AT_A_TIME.lock().unwrap_or_else(|e| e.into_inner())
}

/// Unique temp paths per test so parallel tests never share a socket.
fn temp(name: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!("npbd-suite-{}-{name}.{ext}", std::process::id()))
}

struct DaemonFixture {
    child: Child,
    addr: Addr,
    journal: PathBuf,
    socket: PathBuf,
}

impl DaemonFixture {
    /// Start an `npbd` on a fresh Unix socket. `extra` appends CLI
    /// flags (`--queue-cost`, `--resume`, ...).
    fn start(name: &str, extra: &[&str]) -> DaemonFixture {
        let socket = temp(name, "sock");
        let journal = temp(name, "journal.jsonl");
        if !extra.contains(&"--resume") {
            let _ = std::fs::remove_file(&journal);
        }
        let _ = std::fs::remove_file(&socket);
        // Daemon stderr goes to a log file so a failing test can show
        // what the daemon saw.
        let log = std::fs::File::create(temp(name, "stderr.log")).expect("create daemon log");
        let child = Command::new(env!("CARGO_BIN_EXE_npbd"))
            .arg("--socket")
            .arg(&socket)
            .arg("--journal")
            .arg(&journal)
            .args(["--npb-bin", env!("CARGO_BIN_EXE_npb"), "--backoff-ms", "0"])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(log)
            .spawn()
            .expect("spawn npbd");
        DaemonFixture { child, addr: Addr::Unix(socket.clone()), journal, socket }
    }

    fn client(&self) -> Client {
        Client::connect_retry(&self.addr, 100).expect("connect to npbd")
    }

    /// Graceful drain via the wire op; returns the daemon's exit code.
    fn drain_and_wait(&mut self) -> i32 {
        let mut c = self.client();
        let reply = c.request("{\"op\":\"drain\"}").expect("drain reply");
        assert_eq!(reply.get_str("status"), Some("draining"));
        self.wait_exit()
    }

    fn wait_exit(&mut self) -> i32 {
        let status = self.child.wait().expect("wait npbd");
        status.code().unwrap_or(-1)
    }

    fn cleanup(&self) {
        let _ = std::fs::remove_file(&self.journal);
        let _ = std::fs::remove_file(&self.socket);
    }
}

impl Drop for DaemonFixture {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn submit_line(extra: &str) -> String {
    format!("{{\"op\":\"submit\",\"bench\":\"EP\",\"class\":\"S\"{extra}}}")
}

#[test]
fn submit_cache_hit_and_dedupe() {
    let _serial = serialized();
    let mut d = DaemonFixture::start("cache", &["--workers", "2", "--queue-cost", "8"]);

    // Cold submit: accepted, executed, verified.
    let replies = d.client().submit(&submit_line(",\"threads\":2,\"seed\":11")).unwrap();
    assert_eq!(replies[0].get_str("status"), Some("accepted"));
    assert_eq!(replies[0].get("dedup"), Some(&npb_harness::Json::Bool(false)));
    assert_eq!(replies[1].get_str("disposition"), Some("verified"));
    assert_eq!(replies[1].get("from_cache"), Some(&npb_harness::Json::Bool(false)));

    // Identical submit: served from cache, no second execution.
    let replies = d.client().submit(&submit_line(",\"threads\":2,\"seed\":11")).unwrap();
    assert_eq!(replies.len(), 1, "cache hits skip the accepted line: {replies:?}");
    assert_eq!(replies[0].get("from_cache"), Some(&npb_harness::Json::Bool(true)));
    assert_eq!(replies[0].get_str("disposition"), Some("verified"));

    // A *different* job (new seed) submitted concurrently from several
    // clients dedupes onto one execution.
    let line = submit_line(",\"threads\":2,\"seed\":12");
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let (addr, line) = (d.addr.clone(), line.clone());
            std::thread::spawn(move || {
                Client::connect_retry(&addr, 100).unwrap().submit(&line).unwrap()
            })
        })
        .collect();
    let mut dedup_count = 0;
    for h in handles {
        let replies = h.join().unwrap();
        let terminal = replies.last().unwrap();
        assert_eq!(terminal.get_str("disposition"), Some("verified"), "{replies:?}");
        if replies[0].get("dedup") == Some(&npb_harness::Json::Bool(true)) {
            dedup_count += 1;
        }
    }
    assert!(dedup_count >= 1, "concurrent identical submits must dedupe");

    // stats agrees: one cache hit, at least one dedupe, and exactly two
    // distinct executions (seed 11, seed 12) no matter how many submits.
    let stats = d.client().request("{\"op\":\"stats\"}").unwrap();
    assert_eq!(stats.get_uint("executed"), Some(2), "{stats:?}");
    assert!(stats.get_uint("cache_hits").unwrap() >= 1);
    assert!(stats.get_uint("deduped").unwrap() >= 1);

    assert_eq!(d.drain_and_wait(), 0);
    d.cleanup();
}

#[test]
fn queue_full_rejection_under_load_is_explicit_and_recoverable() {
    let _serial = serialized();
    // Capacity 1 cost unit, 1 worker: the first S job fills the queue.
    let mut d = DaemonFixture::start("backpressure", &["--workers", "1", "--queue-cost", "1"]);

    // Occupy the only slot with a job that hangs long enough to observe
    // backpressure (deadline-killed after 3s, then a clean retry).
    let mut holder = d.client();
    holder
        .send(&submit_line(
            ",\"threads\":2,\"seed\":21,\"inject\":\"hang:1\",\"deadline_ms\":3000,\"retries\":1",
        ))
        .unwrap();
    let accepted = holder.read_line().unwrap();
    assert!(accepted.contains("\"status\":\"accepted\""), "{accepted}");

    // While it holds the queue, every further submit is shed, loudly.
    let reply = d.client().submit(&submit_line(",\"threads\":2,\"seed\":22")).unwrap();
    assert_eq!(reply[0].get_str("status"), Some("rejected"), "{reply:?}");
    assert_eq!(reply[0].get_str("reason"), Some("queue-full"));

    // A job that can never fit gets its own reason (W costs 4 > 1).
    let reply = d
        .client()
        .submit("{\"op\":\"submit\",\"bench\":\"EP\",\"class\":\"W\",\"seed\":23}")
        .unwrap();
    assert_eq!(reply[0].get_str("reason"), Some("cost-exceeds-capacity"), "{reply:?}");

    // The holder's job finishes (deadline-kill + clean retry) and the
    // queue recovers: the same rejected submit is now admitted.
    let terminal = holder.read_line().unwrap();
    assert!(terminal.contains("\"disposition\":\"verified\""), "{terminal}");
    let replies = d.client().submit(&submit_line(",\"threads\":2,\"seed\":22")).unwrap();
    assert_eq!(replies.last().unwrap().get_str("disposition"), Some("verified"), "{replies:?}");

    assert_eq!(d.drain_and_wait(), 0);
    d.cleanup();
}

#[test]
fn deadline_killed_job_is_journaled_and_retried() {
    let _serial = serialized();
    let mut d = DaemonFixture::start("deadline", &["--workers", "1", "--queue-cost", "8"]);

    // First attempt hangs (injected), the per-job deadline kills it,
    // the retry runs clean (faults are one-shot) and verifies.
    let replies = d
        .client()
        .submit(&submit_line(
            ",\"threads\":2,\"seed\":31,\"inject\":\"hang:1\",\"deadline_ms\":2000,\"retries\":1",
        ))
        .unwrap();
    let terminal = replies.last().unwrap();
    assert_eq!(terminal.get_str("disposition"), Some("verified"), "{replies:?}");
    assert_eq!(terminal.get_uint("kills"), Some(1), "the hung attempt was deadline-killed");
    assert_eq!(terminal.get_uint("attempts"), Some(2), "kill + clean retry");

    assert_eq!(d.drain_and_wait(), 0);

    // The journal carries the full story: accepted with the policy,
    // started, and a terminal `done` recording the kill.
    let text = std::fs::read_to_string(&d.journal).unwrap();
    assert!(text.contains("\"ev\":\"accepted\"") && text.contains("\"inject\":\"hang:1\""));
    assert!(text.contains("\"ev\":\"done\"") && text.contains("\"kills\":1"), "{text}");
    let rec = recover(&d.journal).unwrap();
    assert!(rec.pending.is_empty(), "the killed-and-retried job is terminal");
    assert_eq!(rec.completed, 1);
    d.cleanup();
}

#[test]
fn graceful_drain_finishes_running_jobs_and_refuses_new_ones() {
    let _serial = serialized();
    let mut d = DaemonFixture::start("drain", &["--workers", "1", "--queue-cost", "8"]);

    // A slow job (hang + 2s deadline + retry) is mid-flight when the
    // drain starts.
    let mut slow = d.client();
    slow.send(&submit_line(
        ",\"threads\":2,\"seed\":41,\"inject\":\"hang:1\",\"deadline_ms\":2000,\"retries\":1",
    ))
    .unwrap();
    assert!(slow.read_line().unwrap().contains("accepted"));

    // SIGTERM → graceful drain (the same path as the `drain` op).
    assert!(signal::send(d.child.id(), signal::SIGTERM));

    // Give the watcher a beat, then: new submits are refused with the
    // draining reason — an explicit reply, not a dropped connection.
    std::thread::sleep(Duration::from_millis(300));
    let reply = d.client().submit(&submit_line(",\"threads\":2,\"seed\":42")).unwrap();
    assert_eq!(reply[0].get_str("reason"), Some("draining"), "{reply:?}");

    // The in-flight job still runs to its verified terminal line...
    let terminal = slow.read_line().unwrap();
    assert!(terminal.contains("\"disposition\":\"verified\""), "{terminal}");

    // ...and the daemon exits 0 with a sealed journal.
    assert_eq!(d.wait_exit(), 0);
    let rec = recover(&d.journal).unwrap();
    assert!(rec.clean_shutdown, "shutdown record sealed the journal");
    assert!(rec.pending.is_empty());
    assert_eq!(rec.completed, 1, "the drained job is terminal, the refused one never accepted");
    d.cleanup();
}

/// The acceptance chaos run: 32 concurrent attack clients, SIGKILL the
/// daemon mid-run, restart with `--resume`. No accepted job may be
/// lost, the journal must converge to all-terminal, a subsequent
/// identical submission is served from cache, and the attack report
/// records the latency histogram and saturation point.
#[test]
fn chaos_sigkill_resume_loses_no_accepted_job() {
    let _serial = serialized();
    let mut d = DaemonFixture::start("chaos", &["--workers", "2", "--queue-cost", "8"]);
    let bench_out = temp("chaos", "bench.json");
    let _ = std::fs::remove_file(&bench_out);

    // 32 clients × 2 requests over 6 seeds: heavy dedupe/cache traffic
    // plus enough distinct jobs to keep both workers busy. Ramp mode
    // hunts the saturation point against the 8-unit queue.
    let mut attack = Command::new(env!("CARGO_BIN_EXE_npb-attack"))
        .arg("--socket")
        .arg(d.socket.as_os_str())
        .args(["--clients", "32", "--requests", "2", "--seeds", "6"])
        .args(["--bench", "EP", "--class", "S", "--threads", "2", "--ramp"])
        .arg("--out")
        .arg(&bench_out)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn npb-attack");

    // Let the attack build up in-flight work, then SIGKILL the daemon —
    // no drain, no warning, mid-job.
    std::thread::sleep(Duration::from_millis(1200));
    assert!(signal::send(d.child.id(), signal::SIGKILL));
    let _ = d.child.wait();

    // The journal now has accepted jobs with no terminal record.
    let rec = recover(&d.journal).unwrap();
    let lost = rec.pending.len();

    // Restart on the same socket and journal with --resume: incomplete
    // jobs are re-enqueued, verified ones seed the cache. The attack's
    // clients reconnect on their own.
    let mut d2 =
        DaemonFixture::start("chaos", &["--workers", "2", "--queue-cost", "8", "--resume"]);
    let status = attack.wait().expect("attack exits");
    assert!(status.success(), "npb-attack must survive the daemon's death");

    // Wait (bounded) for the resumed daemon to finish the re-enqueued
    // jobs, then every journaled job must have a terminal disposition.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let rec = recover(&d2.journal).unwrap();
        if rec.pending.is_empty() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "jobs still pending after resume: {:?}",
            rec.pending.iter().map(|s| s.to_string()).collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(200));
    }

    // An identical submission is now a cache hit — served without a
    // child spawn, proving the resumed daemon kept the results. The
    // spec must match the attack's byte-for-byte policy (including its
    // deadline): the policy is part of the content address.
    let replies = d2
        .client()
        .submit(&submit_line(",\"threads\":2,\"deadline_ms\":10000,\"seed\":0"))
        .unwrap();
    assert_eq!(replies[0].get("from_cache"), Some(&npb_harness::Json::Bool(true)), "{replies:?}");

    assert_eq!(d2.drain_and_wait(), 0);

    // The interrupted incarnation accepted jobs it never finished; the
    // resume owed exactly those. (If the SIGKILL landed between jobs,
    // lost may be 0 — the invariant is convergence, which the loop
    // above already proved.)
    eprintln!("chaos: {lost} job(s) in flight at SIGKILL, all recovered");

    // The attack report landed with histogram + saturation point.
    let report = std::fs::read_to_string(&bench_out).unwrap();
    let v = npb_harness::Json::parse(report.trim()).unwrap();
    assert_eq!(v.get_str("bench"), Some("service"));
    assert!(v.get("latency").is_some(), "latency histogram present: {report}");
    assert!(v.get("saturation_clients").is_some(), "saturation point recorded: {report}");
    assert!(v.get_uint("sent").unwrap() >= 64, "all 32 clients × 2 requests sent");

    let _ = std::fs::remove_file(&bench_out);
    d2.cleanup();
}

//! Integration: the span recorder's hot path never allocates.
//!
//! A counting [`GlobalAlloc`] wraps the system allocator; the single
//! test then asserts zero allocations across many `trace::scope` calls
//! both with tracing disabled (the advertised zero-cost path — one
//! relaxed load and out) and with a session installed, once the region
//! name has been interned and the pre-sized span ring is warm.
//!
//! This lives in its own test binary on purpose: the allocator counter
//! is process-global, and any concurrently running test would pollute
//! it. One binary, one test, no noise.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use npb::{trace, TraceSession};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: Counting = Counting;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn scope_allocates_nothing_when_disabled_or_after_warmup() {
    // Disabled path: no session installed, scope() must be a branch.
    assert!(trace::current().is_none(), "test requires a clean process");
    let disabled = allocs_during(|| {
        for _ in 0..1000 {
            let _s = trace::scope("alloc_probe");
        }
    });
    assert_eq!(disabled, 0, "disabled trace::scope allocated {disabled} times");

    // Enabled path: install a session, warm up once (the first scope
    // interns the region name and touches the accumulator row), then
    // the steady state must be allocation-free — the span ring is
    // pre-sized and the intern table hits without inserting.
    let session = TraceSession::new(1);
    trace::install(session.clone());
    {
        let _warm = trace::scope("alloc_probe");
    }
    let enabled = allocs_during(|| {
        for _ in 0..1000 {
            let _s = trace::scope("alloc_probe");
        }
    });
    trace::uninstall();
    assert_eq!(enabled, 0, "warm traced trace::scope allocated {enabled} times");

    // The session still holds the recorded spans (capped at the ring
    // capacity) — the loop above really did record.
    let summary = session.summarize();
    assert!(summary.iter().any(|r| r.name == "alloc_probe"));
}

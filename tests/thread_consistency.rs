//! Integration: numerical results are independent of the team size.
//!
//! The structured-grid benchmarks have no cross-thread reductions in
//! their timed loops, so their verification quantities reproduce
//! bitwise at any thread count; the reduction-carrying kernels (CG, EP,
//! MG's final norm) stay within the NPB verification tolerance.

use npb::{trace, Class, Style, Team, TraceFormat, TraceSession};

#[test]
fn bt_norms_bitwise_across_team_sizes() {
    let base = npb_bt::run_raw(Class::S, Style::Opt, None);
    for n in [1usize, 3] {
        let team = Team::new(n);
        let r = npb_bt::run_raw(Class::S, Style::Opt, Some(&team));
        assert_eq!(r.xcr, base.xcr, "{n} threads");
        assert_eq!(r.xce, base.xce, "{n} threads");
    }
}

#[test]
fn lu_pipelined_wavefront_bitwise_across_team_sizes() {
    let base = npb_lu::run_raw(Class::S, Style::Opt, None);
    let team = Team::new(3);
    let r = npb_lu::run_raw(Class::S, Style::Opt, Some(&team));
    assert_eq!(r.xcr, base.xcr);
    assert_eq!(r.xci, base.xci);
}

#[test]
fn ft_checksums_bitwise_across_team_sizes() {
    let base = npb_ft::run_raw(Class::S, Style::Opt, None);
    let team = Team::new(4);
    let r = npb_ft::run_raw(Class::S, Style::Opt, Some(&team));
    assert_eq!(r.sums, base.sums);
}

#[test]
fn cg_zeta_within_tolerance_across_team_sizes() {
    let base = npb_cg::run_raw(Class::S, Style::Opt, None);
    for n in [2usize, 5] {
        let team = Team::new(n);
        let r = npb_cg::run_raw(Class::S, Style::Opt, Some(&team));
        let rel = ((r.zeta - base.zeta) / base.zeta).abs();
        assert!(rel < 1e-12, "{n} threads: rel = {rel}");
    }
}

/// Every benchmark at class S, serial vs teams of 1 / 2 / 4 threads.
///
/// The structured-grid codes (BT, SP, LU, FT) and the sort (IS) have no
/// order-sensitive cross-thread reductions, so their verification values
/// must reproduce **bitwise** at every team size. CG's dot products are
/// reduced in rank order over identically-partitioned rows and come out
/// bitwise-equal at class S too (checked empirically; asserted so a
/// future change that breaks it is noticed). EP's Gaussian sums and MG's
/// final residual norm genuinely depend on summation order, so they get
/// the NPB verification tolerance instead, with the exactly-countable
/// parts (EP's annulus counts) still asserted bitwise.
#[test]
fn every_benchmark_reproduces_across_serial_and_1_2_4_threads() {
    let c = Class::S;
    let s = Style::Opt;
    let bt0 = npb_bt::run_raw(c, s, None);
    let sp0 = npb_sp::run_raw(c, s, None);
    let lu0 = npb_lu::run_raw(c, s, None);
    let ft0 = npb_ft::run_raw(c, s, None);
    let cg0 = npb_cg::run_raw(c, s, None);
    let mg0 = npb_mg::run_raw(c, s, None);
    let ep0 = npb_ep::run_raw(c, s, None);
    assert!(npb_is::run(c, s, None).verified.is_success());

    for n in [1usize, 2, 4] {
        let team = Team::new(n);
        let t = Some(&team);

        let bt = npb_bt::run_raw(c, s, t);
        assert_eq!((bt.xcr, bt.xce), (bt0.xcr, bt0.xce), "BT t{n}");
        let sp = npb_sp::run_raw(c, s, t);
        assert_eq!((sp.xcr, sp.xce), (sp0.xcr, sp0.xce), "SP t{n}");
        let lu = npb_lu::run_raw(c, s, t);
        assert_eq!((lu.xcr, lu.xce, lu.xci), (lu0.xcr, lu0.xce, lu0.xci), "LU t{n}");
        let ft = npb_ft::run_raw(c, s, t);
        assert_eq!(ft.sums, ft0.sums, "FT t{n}");
        let cg = npb_cg::run_raw(c, s, t);
        assert_eq!(cg.zeta, cg0.zeta, "CG t{n}");

        // IS verifies exactly (integer ranks + partial checks).
        assert!(npb_is::run(c, s, t).verified.is_success(), "IS t{n}");

        // Order-sensitive reductions: NPB tolerance, not bitwise.
        let mg = npb_mg::run_raw(c, s, t);
        let rel = ((mg.rnm2 - mg0.rnm2) / mg0.rnm2).abs();
        assert!(rel < 1e-12, "MG t{n}: rel = {rel}");
        let ep = npb_ep::run_raw(c, s, t);
        assert_eq!(ep.q, ep0.q, "EP t{n}: annulus counts are exact integers");
        assert!(((ep.sx - ep0.sx) / ep0.sx).abs() < 1e-12, "EP t{n} sx");
        assert!(((ep.sy - ep0.sy) / ep0.sy).abs() < 1e-12, "EP t{n} sy");
    }
}

/// Spin-vs-park equivalence: the synchronization mode must never change
/// a numerical result.
///
/// The hybrid runtime's two extremes — the pure park path
/// (`NPB_SPIN_US=0`, the paper's wait/notify model) and an effectively
/// always-spin budget — schedule the same rank-ordered work over the
/// same cached partitions, so every benchmark must produce **bitwise**
/// identical verification quantities under both, at every team size.
/// Unlike the serial-vs-team comparison above, this holds even for the
/// order-sensitive reductions (EP, MG): at a fixed thread count the
/// reduction order is fixed, whatever the waiters do while they wait.
#[test]
fn spin_and_park_paths_are_bit_identical_for_every_benchmark() {
    let c = Class::S;
    let s = Style::Opt;
    // Large enough that no waiter ever parks at class S region lengths.
    const ALWAYS_SPIN_US: u64 = 200_000;
    for n in [1usize, 2, 4] {
        let run = |spin_us: u64| {
            let team = Team::new(n);
            team.set_spin_us(spin_us);
            let t = Some(&team);
            let bt = npb_bt::run_raw(c, s, t);
            let sp = npb_sp::run_raw(c, s, t);
            let lu = npb_lu::run_raw(c, s, t);
            let ft = npb_ft::run_raw(c, s, t);
            let cg = npb_cg::run_raw(c, s, t);
            let mg = npb_mg::run_raw(c, s, t);
            let ep = npb_ep::run_raw(c, s, t);
            let is_ok = npb_is::run(c, s, t).verified.is_success();
            (
                (bt.xcr, bt.xce),
                (sp.xcr, sp.xce),
                (lu.xcr, lu.xce, lu.xci),
                ft.sums,
                cg.zeta,
                mg.rnm2,
                (ep.sx, ep.sy, ep.q),
                is_ok,
            )
        };
        let park = run(0);
        let spin = run(ALWAYS_SPIN_US);
        assert_eq!(park.0, spin.0, "BT t{n}");
        assert_eq!(park.1, spin.1, "SP t{n}");
        assert_eq!(park.2, spin.2, "LU t{n}");
        assert_eq!(park.3, spin.3, "FT t{n}");
        assert_eq!(park.4, spin.4, "CG t{n}");
        assert_eq!(park.5, spin.5, "MG t{n}");
        assert_eq!(park.6, spin.6, "EP t{n}");
        assert!(park.7 && spin.7, "IS t{n}: both modes must verify");
    }
}

/// Observability must be observation only: running every benchmark with
/// the `npb-trace` span recorder off, on, and on-with-folded-export must
/// produce bit-identical verification values at every team size — and
/// leave the NPB random-number stream in exactly the same position (the
/// recorder must never draw from or reseed the generator).
#[test]
fn tracing_off_on_and_folded_are_bit_identical_for_every_benchmark() {
    let c = Class::S;
    let s = Style::Opt;
    for n in [0usize, 1, 2, 4] {
        // Runs the whole suite, interleaving an explicit randlc stream
        // so a recorder that touched the generator would shift the
        // final seed. Returns every verification quantity + that seed.
        let run_all = |traced: Option<TraceFormat>| {
            let team = (n > 0).then(|| Team::new(n));
            let t = team.as_ref();
            let session = traced.map(|_| {
                let session = TraceSession::new(n.max(1));
                trace::install(session.clone());
                if let Some(team) = t {
                    team.set_trace(Some(session.clone()));
                }
                session
            });
            let mut seed = npb_core::SEED_DEFAULT;
            let a = 1_220_703_125.0;
            let bt = npb_bt::run_raw(c, s, t);
            npb_core::randlc(&mut seed, a);
            let sp = npb_sp::run_raw(c, s, t);
            let lu = npb_lu::run_raw(c, s, t);
            npb_core::randlc(&mut seed, a);
            let ft = npb_ft::run_raw(c, s, t);
            let cg = npb_cg::run_raw(c, s, t);
            let mg = npb_mg::run_raw(c, s, t);
            let ep = npb_ep::run_raw(c, s, t);
            let is_ok = npb_is::run(c, s, t).verified.is_success();
            npb_core::randlc(&mut seed, a);
            if let Some(session) = session {
                // Exercise the export path too: rendering must also
                // leave the numerics (trivially) and the stream alone.
                match traced {
                    Some(TraceFormat::Folded) => drop(session.render_folded()),
                    _ => drop(session.render_json_profile(false)),
                }
                if let Some(team) = t {
                    team.set_trace(None);
                }
                trace::uninstall();
            }
            (
                (bt.xcr, bt.xce),
                (sp.xcr, sp.xce),
                (lu.xcr, lu.xce, lu.xci),
                ft.sums,
                cg.zeta,
                mg.rnm2,
                (ep.sx, ep.sy, ep.q),
                is_ok,
                seed.to_bits(),
            )
        };
        let off = run_all(None);
        let json = run_all(Some(TraceFormat::Json));
        let folded = run_all(Some(TraceFormat::Folded));
        assert_eq!(off, json, "tracing on (json) perturbed a result at t{n}");
        assert_eq!(off, folded, "tracing on (folded) perturbed a result at t{n}");
    }
}

#[test]
fn one_team_can_serve_many_benchmarks_in_sequence() {
    // The persistent master-worker team survives across whole benchmark
    // runs, as the paper's long-lived Java threads do.
    let team = Team::new(2);
    let a = npb_mg::run(Class::S, Style::Opt, Some(&team));
    let b = npb_is::run(Class::S, Style::Opt, Some(&team));
    let c = npb_cg::run(Class::S, Style::Safe, Some(&team));
    assert!(a.verified.is_success() && b.verified.is_success() && c.verified.is_success());
}

//! Integration: numerical results are independent of the team size.
//!
//! The structured-grid benchmarks have no cross-thread reductions in
//! their timed loops, so their verification quantities reproduce
//! bitwise at any thread count; the reduction-carrying kernels (CG, EP,
//! MG's final norm) stay within the NPB verification tolerance.

use npb::{Class, Style, Team};

#[test]
fn bt_norms_bitwise_across_team_sizes() {
    let base = npb_bt::run_raw(Class::S, Style::Opt, None);
    for n in [1usize, 3] {
        let team = Team::new(n);
        let r = npb_bt::run_raw(Class::S, Style::Opt, Some(&team));
        assert_eq!(r.xcr, base.xcr, "{n} threads");
        assert_eq!(r.xce, base.xce, "{n} threads");
    }
}

#[test]
fn lu_pipelined_wavefront_bitwise_across_team_sizes() {
    let base = npb_lu::run_raw(Class::S, Style::Opt, None);
    let team = Team::new(3);
    let r = npb_lu::run_raw(Class::S, Style::Opt, Some(&team));
    assert_eq!(r.xcr, base.xcr);
    assert_eq!(r.xci, base.xci);
}

#[test]
fn ft_checksums_bitwise_across_team_sizes() {
    let base = npb_ft::run_raw(Class::S, Style::Opt, None);
    let team = Team::new(4);
    let r = npb_ft::run_raw(Class::S, Style::Opt, Some(&team));
    assert_eq!(r.sums, base.sums);
}

#[test]
fn cg_zeta_within_tolerance_across_team_sizes() {
    let base = npb_cg::run_raw(Class::S, Style::Opt, None);
    for n in [2usize, 5] {
        let team = Team::new(n);
        let r = npb_cg::run_raw(Class::S, Style::Opt, Some(&team));
        let rel = ((r.zeta - base.zeta) / base.zeta).abs();
        assert!(rel < 1e-12, "{n} threads: rel = {rel}");
    }
}

#[test]
fn one_team_can_serve_many_benchmarks_in_sequence() {
    // The persistent master-worker team survives across whole benchmark
    // runs, as the paper's long-lived Java threads do.
    let team = Team::new(2);
    let a = npb_mg::run(Class::S, Style::Opt, Some(&team));
    let b = npb_is::run(Class::S, Style::Opt, Some(&team));
    let c = npb_cg::run(Class::S, Style::Safe, Some(&team));
    assert!(a.verified.is_success() && b.verified.is_success() && c.verified.is_success());
}

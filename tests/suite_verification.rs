//! Integration: every benchmark of the suite verifies through the
//! facade, in both execution styles, serially and on a worker team —
//! the full matrix a Table 2–4 harness run exercises.

use npb::{run_benchmark, Class, Style, Verified};

#[test]
fn all_benchmarks_verify_serial_opt() {
    for name in npb::BENCHMARKS {
        let r = run_benchmark(name, Class::S, Style::Opt, 0).unwrap();
        assert_eq!(r.verified, Verified::Success, "{name} serial opt");
        assert!(r.time_secs > 0.0 && r.mops > 0.0, "{name} timing");
    }
}

#[test]
fn all_benchmarks_verify_on_a_team_safe_style() {
    for name in npb::BENCHMARKS {
        let r = run_benchmark(name, Class::S, Style::Safe, 2).unwrap();
        assert_eq!(r.verified, Verified::Success, "{name} 2-thread safe");
        assert_eq!(r.threads, 2);
    }
}

#[test]
fn report_rows_are_well_formed() {
    let r = run_benchmark("MG", Class::S, Style::Opt, 3).unwrap();
    let row = r.row();
    assert!(row.starts_with("MG,S,opt,3,"), "{row}");
    assert!(row.ends_with(",ok"), "{row}");
    assert!(r.banner().contains("MG Benchmark Completed"));
}

//! Cross-crate property tests: randomized team sizes, grid shapes and
//! problem instances against the invariants the suite relies on.

use npb::{Partials, SharedMut, Team};
use npb_core::Style;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A team of any size computes the same prefix-partitioned map as
    /// the serial path, for arbitrary lengths.
    #[test]
    fn team_map_matches_serial(n in 1usize..2000, threads in 1usize..9) {
        let mut serial = vec![0.0f64; n];
        for (i, v) in serial.iter_mut().enumerate() {
            *v = (i as f64).sin();
        }
        let team = Team::new(threads);
        let mut par = vec![0.0f64; n];
        let s = unsafe { SharedMut::new(&mut par) };
        team.exec(|p| {
            for i in p.range(n) {
                s.set::<true>(i, (i as f64).sin());
            }
        });
        drop(s);
        prop_assert_eq!(serial, par);
    }

    /// Rank-ordered reduction is deterministic and exact for integers.
    #[test]
    fn reduction_is_exact_for_integers(n in 1usize..5000, threads in 1usize..7) {
        let team = Team::new(threads);
        let partials = Partials::new(threads);
        team.exec(|p| {
            let mut s = 0.0;
            for i in p.range(n) {
                s += i as f64;
            }
            partials.set(p.tid(), s);
        });
        prop_assert_eq!(partials.sum(), (n * (n - 1) / 2) as f64);
    }

    /// The basic-op checksums agree across layouts and styles for
    /// arbitrary (small) grids.
    #[test]
    fn cfd_ops_variants_agree(n1 in 5usize..14, n2 in 5usize..14, n3 in 5usize..14) {
        use npb_cfd_ops::{run_op, Layout, Op, OpConfig};
        let cfg = OpConfig { n1, n2, n3 };
        for op in [Op::Assignment, Op::Stencil1, Op::ReductionSum] {
            let a = run_op(op, Layout::Linearized, Style::Opt, &cfg, None).checksum;
            let b = run_op(op, Layout::MultiDim, Style::Safe, &cfg, None).checksum;
            let tol = 1e-9 * a.abs().max(1.0);
            prop_assert!((a - b).abs() <= tol, "{op:?}: {a} vs {b}");
        }
    }

    /// LINPACK and blocked LU both solve random systems, any block size.
    #[test]
    fn lu_factorizations_solve(n in 1usize..60, nb in 1usize..70) {
        use npb_jgf::{dgefa, dgesl, getrf_blocked, getrs, Matrix};
        let mut m1 = Matrix::random(n, 314159265.0);
        let mut b1 = m1.row_sums();
        let p1 = dgefa::<true>(&mut m1);
        dgesl::<true>(&m1, &p1, &mut b1);
        let mut m2 = Matrix::random(n, 314159265.0);
        let mut b2 = m2.row_sums();
        let p2 = getrf_blocked::<true>(&mut m2, nb);
        getrs::<true>(&m2, &p2, &mut b2);
        for i in 0..n {
            prop_assert!((b1[i] - 1.0).abs() < 1e-8, "dgefa x[{i}] = {}", b1[i]);
            prop_assert!((b2[i] - 1.0).abs() < 1e-8, "blocked x[{i}] = {}", b2[i]);
        }
    }

    /// The NPB generator's jump-ahead matches stepping for arbitrary
    /// offsets (the property EP/FT batch seeding relies on).
    #[test]
    fn rng_jump_matches_stepping(n in 0u64..3000) {
        let mut a = npb_core::Randlc::new(npb_core::SEED_DEFAULT);
        a.jump(n);
        let mut b = npb_core::Randlc::new(npb_core::SEED_DEFAULT);
        for _ in 0..n {
            b.next_f64();
        }
        prop_assert_eq!(a.seed.to_bits(), b.seed.to_bits());
    }
}

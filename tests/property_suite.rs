//! Cross-crate property tests: seeded team sizes, grid shapes and
//! problem instances against the invariants the suite relies on.
//!
//! Case generation is driven by the NPB linear-congruential generator
//! (`npb_core::Randlc`) instead of a property-testing framework, so the
//! whole suite is deterministic and builds offline with no external
//! dependencies.

use npb::{Partials, SharedMut, Team};
use npb_core::{Randlc, Style};

fn rng() -> Randlc {
    Randlc::new(npb_core::SEED_DEFAULT)
}

/// Uniform integer in `lo..hi` from the NPB stream.
fn draw(rng: &mut Randlc, lo: usize, hi: usize) -> usize {
    lo + (rng.next_f64() * (hi - lo) as f64) as usize
}

/// A team of any size computes the same prefix-partitioned map as
/// the serial path, for sampled lengths.
#[test]
fn team_map_matches_serial() {
    let mut rng = rng();
    for _case in 0..16 {
        let n = draw(&mut rng, 1, 2000);
        let threads = draw(&mut rng, 1, 9);
        let mut serial = vec![0.0f64; n];
        for (i, v) in serial.iter_mut().enumerate() {
            *v = (i as f64).sin();
        }
        let team = Team::new(threads);
        let mut par = vec![0.0f64; n];
        let s = unsafe { SharedMut::new(&mut par) };
        team.exec(|p| {
            for i in p.range(n) {
                s.set::<true>(i, (i as f64).sin());
            }
        });
        drop(s);
        assert_eq!(serial, par, "n {n}, threads {threads}");
    }
}

/// Rank-ordered reduction is deterministic and exact for integers.
#[test]
fn reduction_is_exact_for_integers() {
    let mut rng = rng();
    for _case in 0..16 {
        let n = draw(&mut rng, 1, 5000);
        let threads = draw(&mut rng, 1, 7);
        let team = Team::new(threads);
        let partials = Partials::new(threads);
        team.exec(|p| {
            let mut s = 0.0;
            for i in p.range(n) {
                s += i as f64;
            }
            partials.set(p.tid(), s);
        });
        assert_eq!(partials.sum(), (n * (n - 1) / 2) as f64, "n {n}, threads {threads}");
    }
}

/// The basic-op checksums agree across layouts and styles for
/// sampled (small) grids.
#[test]
fn cfd_ops_variants_agree() {
    use npb_cfd_ops::{run_op, Layout, Op, OpConfig};
    let mut rng = rng();
    for _case in 0..16 {
        let cfg = OpConfig {
            n1: draw(&mut rng, 5, 14),
            n2: draw(&mut rng, 5, 14),
            n3: draw(&mut rng, 5, 14),
        };
        for op in [Op::Assignment, Op::Stencil1, Op::ReductionSum] {
            let a = run_op(op, Layout::Linearized, Style::Opt, &cfg, None).checksum;
            let b = run_op(op, Layout::MultiDim, Style::Safe, &cfg, None).checksum;
            let tol = 1e-9 * a.abs().max(1.0);
            assert!((a - b).abs() <= tol, "{op:?} on {cfg:?}: {a} vs {b}");
        }
    }
}

/// LINPACK and blocked LU both solve seeded random systems, any block
/// size.
#[test]
fn lu_factorizations_solve() {
    use npb_jgf::{dgefa, dgesl, getrf_blocked, getrs, Matrix};
    let mut rng = rng();
    for _case in 0..16 {
        let n = draw(&mut rng, 1, 60);
        let nb = draw(&mut rng, 1, 70);
        let mut m1 = Matrix::random(n, 314159265.0);
        let mut b1 = m1.row_sums();
        let p1 = dgefa::<true>(&mut m1);
        dgesl::<true>(&m1, &p1, &mut b1);
        let mut m2 = Matrix::random(n, 314159265.0);
        let mut b2 = m2.row_sums();
        let p2 = getrf_blocked::<true>(&mut m2, nb);
        getrs::<true>(&m2, &p2, &mut b2);
        for i in 0..n {
            assert!((b1[i] - 1.0).abs() < 1e-8, "n {n}: dgefa x[{i}] = {}", b1[i]);
            assert!((b2[i] - 1.0).abs() < 1e-8, "n {n}, nb {nb}: blocked x[{i}] = {}", b2[i]);
        }
    }
}

/// The NPB generator's jump-ahead matches stepping for sampled
/// offsets (the property EP/FT batch seeding relies on).
#[test]
fn rng_jump_matches_stepping() {
    let mut rng = rng();
    for _case in 0..24 {
        let n = draw(&mut rng, 0, 3000) as u64;
        let mut a = npb_core::Randlc::new(npb_core::SEED_DEFAULT);
        a.jump(n);
        let mut b = npb_core::Randlc::new(npb_core::SEED_DEFAULT);
        for _ in 0..n {
            b.next_f64();
        }
        assert_eq!(a.seed.to_bits(), b.seed.to_bits(), "jump({n})");
    }
}

/// Seeded random start/stop sequences against the region-timer
/// registry: open regions always nest like scopes, `stop` is only ever
/// accepted for the innermost open region, and totals/counts/depth
/// follow the successful operations exactly.
#[test]
fn region_registry_nesting_invariants_hold_under_random_sequences() {
    use npb_core::timer::{RegionRegistry, RegionTimerError};
    let mut rng = rng();
    for case in 0..24 {
        let mut reg = RegionRegistry::new();
        let nregions = draw(&mut rng, 1, 9);
        let ids: Vec<usize> = (0..nregions).map(|i| reg.register(&format!("region_{i}"))).collect();
        // Re-registering a name must be idempotent.
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(reg.register(&format!("region_{i}")), id, "case {case}");
            assert_eq!(reg.lookup(&format!("region_{i}")), Some(id), "case {case}");
        }

        // Shadow model: the stack of open ids and per-id closed counts.
        let mut open: Vec<usize> = Vec::new();
        let mut closed = vec![0u64; nregions];
        for step in 0..200 {
            let id = ids[draw(&mut rng, 0, nregions)];
            if draw(&mut rng, 0, 2) == 0 {
                let res = reg.start(id);
                if open.contains(&id) {
                    assert_eq!(
                        res,
                        Err(RegionTimerError::AlreadyRunning),
                        "case {case} step {step}: double start of {id}"
                    );
                } else {
                    assert_eq!(res, Ok(()), "case {case} step {step}");
                    open.push(id);
                }
            } else {
                let res = reg.stop(id);
                if open.last() == Some(&id) {
                    let secs = res.unwrap_or_else(|e| {
                        panic!("case {case} step {step}: innermost stop failed: {e}")
                    });
                    assert!(secs >= 0.0);
                    open.pop();
                    closed[id] += 1;
                } else if open.contains(&id) {
                    assert_eq!(
                        res,
                        Err(RegionTimerError::NotInnermost),
                        "case {case} step {step}: non-innermost stop of {id}"
                    );
                } else {
                    assert_eq!(
                        res,
                        Err(RegionTimerError::NotRunning),
                        "case {case} step {step}: stop of closed {id}"
                    );
                }
            }
            assert_eq!(reg.depth(), open.len(), "case {case} step {step}");
        }
        // Failed operations must not have perturbed the accounting.
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(reg.count(id), closed[i], "case {case}: count of region_{i}");
            if closed[i] == 0 {
                assert_eq!(reg.total(id), 0.0, "case {case}: unclosed region_{i} has no time");
            } else {
                assert!(reg.total(id) >= 0.0, "case {case}");
            }
        }
        // Ids outside the registry always error, never panic.
        assert_eq!(reg.start(nregions), Err(RegionTimerError::UnknownRegion), "case {case}");
        assert_eq!(reg.stop(nregions), Err(RegionTimerError::UnknownRegion), "case {case}");
    }
}

//! Integration: the `npb-trace` observability layer.
//!
//! Covers the export contracts end to end — the JSON profile parses
//! with the harness's own strict reader and its spans are well-formed,
//! the folded export follows the `frame;frame <count>` grammar — plus
//! the two quantitative promises: per-region times account for the
//! wall clock of every benchmark's timed section, and recording costs
//! little enough that a traced run stays close to an untraced one.
//!
//! Every test here installs (directly or via `--trace`) the
//! process-global trace session, so they serialize on [`LOCK`].

use std::path::PathBuf;
use std::sync::Mutex;

use npb::{try_run_benchmark, Class, RunOptions, Style, TraceFormat, BENCHMARKS};
use npb_harness::json::Json;

/// Serializes tests that install the process-global trace session.
static LOCK: Mutex<()> = Mutex::new(());

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("npb-trace-suite-{}-{name}", std::process::id()))
}

const KINDS: [&str; 5] = ["compute", "barrier_spin", "barrier_park", "dispatch", "rollback"];

#[test]
fn json_profile_roundtrips_through_the_harness_reader() {
    let _guard = LOCK.lock().unwrap();
    let path = tmp("cg-profile.json");
    let opts = RunOptions { trace: Some(&path), ..RunOptions::default() };
    let report = try_run_benchmark("CG", Class::S, Style::Opt, 2, &opts).expect("CG runs");
    assert!(report.verified.is_success());

    let text = std::fs::read_to_string(&path).expect("profile written");
    let v = Json::parse(text.trim()).expect("profile parses with the harness reader");
    assert_eq!(v.get_str("bench"), Some("CG"));
    assert_eq!(v.get_str("class"), Some("S"));
    assert_eq!(v.get_uint("threads"), Some(2));
    assert_eq!(v.get("truncated"), Some(&Json::Bool(false)));
    assert!(v.get_num("wall_secs").expect("wall_secs") > 0.0);

    // Every CG phase shows up with sane derived metrics, and the
    // profile's region list matches the report's regions field.
    let Some(Json::Arr(regions)) = v.get("regions") else { panic!("regions array") };
    let names: Vec<&str> = regions.iter().filter_map(|r| r.get_str("name")).collect();
    assert!(names.contains(&"conj_grad"), "regions: {names:?}");
    assert!(names.contains(&"power_step"), "regions: {names:?}");
    for r in regions {
        assert!(r.get_num("secs").expect("secs") >= 0.0);
        assert!(r.get_num("imbalance").expect("imbalance") >= 1.0 - 1e-9);
        assert!(r.get_num("min").unwrap() <= r.get_num("max").unwrap());
        let share = r.get_num("barrier_share").unwrap();
        assert!((0.0..=1.0).contains(&share), "barrier_share {share}");
    }
    let reported: Vec<&str> = report.regions.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, reported, "profile and BenchReport must agree on regions");
    std::fs::remove_file(&path).ok();
}

#[test]
fn spans_are_well_formed_and_per_rank_non_overlapping() {
    let _guard = LOCK.lock().unwrap();
    let path = tmp("mg-spans.json");
    let opts = RunOptions { trace: Some(&path), ..RunOptions::default() };
    let report = try_run_benchmark("MG", Class::S, Style::Opt, 2, &opts).expect("MG runs");
    assert!(report.verified.is_success());

    let text = std::fs::read_to_string(&path).expect("profile written");
    let v = Json::parse(text.trim()).expect("profile parses");
    let Some(Json::Arr(spans)) = v.get("spans") else { panic!("spans array") };
    assert!(!spans.is_empty(), "a traced MG run records spans");

    // (rank, kind) -> intervals. Worker lanes (rank >= 0) are single
    // writer and sequential per kind; the master lane (-1) may nest
    // scopes, so it only gets the end >= start check.
    let mut by_lane: std::collections::BTreeMap<(i64, String), Vec<(u64, u64)>> =
        std::collections::BTreeMap::new();
    for sp in spans {
        let rank = sp.get_num("rank").expect("rank") as i64;
        assert!(rank >= -1, "rank {rank}");
        let kind = sp.get_str("kind").expect("kind").to_string();
        assert!(KINDS.contains(&kind.as_str()), "unknown kind {kind}");
        assert!(sp.get_str("region").is_some());
        let start = sp.get_uint("start_ns").expect("start_ns");
        let end = sp.get_uint("end_ns").expect("end_ns");
        assert!(end >= start, "span ends before it starts: {start}..{end}");
        if rank >= 0 {
            by_lane.entry((rank, kind)).or_default().push((start, end));
        }
    }
    for ((rank, kind), mut iv) in by_lane {
        iv.sort_unstable();
        for w in iv.windows(2) {
            assert!(
                w[1].0 >= w[0].1,
                "rank {rank} {kind}: spans overlap ({:?} then {:?})",
                w[0],
                w[1]
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn folded_export_follows_the_collapsed_stack_grammar() {
    let _guard = LOCK.lock().unwrap();
    let path = tmp("mg.folded");
    let opts =
        RunOptions { trace: Some(&path), trace_format: TraceFormat::Folded, ..Default::default() };
    let report = try_run_benchmark("MG", Class::S, Style::Opt, 2, &opts).expect("MG runs");
    assert!(report.verified.is_success());

    let text = std::fs::read_to_string(&path).expect("folded written");
    assert!(!text.is_empty());
    let mut frames = Vec::new();
    for line in text.lines() {
        // Grammar: `region;kind <count>` — one space, integer count,
        // no separator characters inside the frames.
        let (stack, count) = line.rsplit_once(' ').expect("frame/count separator");
        count.parse::<u64>().expect("integer sample count");
        let parts: Vec<&str> = stack.split(';').collect();
        assert_eq!(parts.len(), 2, "exactly region;kind: {line:?}");
        assert!(parts.iter().all(|p| !p.is_empty() && !p.contains(char::is_whitespace)));
        assert!(KINDS.contains(&parts[1]), "kind frame: {line:?}");
        frames.push(stack.to_string());
    }
    assert!(frames.iter().any(|f| f == "resid;compute"), "frames: {frames:?}");
    assert!(frames.iter().any(|f| f == "psinv;compute"), "frames: {frames:?}");
    std::fs::remove_file(&path).ok();
}

/// The acceptance criterion: per-region times sum to within 10% of the
/// reported wall clock for every benchmark at class S (the phase scopes
/// cover essentially the whole timed section).
#[test]
fn region_times_account_for_the_wall_clock_of_every_benchmark() {
    let _guard = LOCK.lock().unwrap();
    for name in BENCHMARKS {
        let path = tmp(&format!("{name}-wall.json"));
        let opts = RunOptions { trace: Some(&path), ..RunOptions::default() };
        let report = try_run_benchmark(name, Class::S, Style::Opt, 0, &opts).unwrap_or_else(|e| {
            panic!("{name}: {e}");
        });
        std::fs::remove_file(&path).ok();
        assert!(!report.regions.is_empty(), "{name}: traced run must report regions");
        let sum: f64 = report.regions.iter().map(|r| r.secs).sum();
        let wall = report.time_secs;
        // 10% relative plus 1ms absolute slack for sub-10ms sections.
        let tol = 0.10 * wall + 1e-3;
        assert!(
            (sum - wall).abs() <= tol,
            "{name}: region sum {sum:.6}s vs wall {wall:.6}s (tol {tol:.6}s)"
        );
    }
}

/// Recording overhead stays small: a traced run's timed section is
/// within 25% (plus scheduling slack) of an untraced one, min-of-N on
/// both sides to shed scheduler noise.
#[test]
fn tracing_overhead_is_bounded_on_cg_and_mg() {
    let _guard = LOCK.lock().unwrap();
    let min_time = |name: &str, trace_to: Option<&PathBuf>| -> f64 {
        (0..5)
            .map(|_| {
                let opts =
                    RunOptions { trace: trace_to.map(|p| p.as_path()), ..Default::default() };
                let r = try_run_benchmark(name, Class::S, Style::Opt, 0, &opts).expect("runs");
                assert!(r.verified.is_success());
                r.time_secs
            })
            .fold(f64::INFINITY, f64::min)
    };
    for name in ["CG", "MG"] {
        let path = tmp(&format!("{name}-overhead.json"));
        let off = min_time(name, None);
        let on = min_time(name, Some(&path));
        std::fs::remove_file(&path).ok();
        assert!(on <= off * 1.25 + 2e-3, "{name}: traced min {on:.6}s vs untraced min {off:.6}s");
    }
}
